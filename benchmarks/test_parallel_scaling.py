"""Process-pool sharding vs threads on the Figure-5 covar workload.

Each worker count times ``mode="process"`` (a dedicated
:class:`ProcessKernelExecutor`) against ``mode="thread"`` over the same
compiled kernel and asserts bit identity with single-shot execution.
Skips on single-core hosts — there the pool can only lose, and the
number measured would be pickling overhead, not GIL escape (see
``require_multicore``).  The standalone ``parallel_scaling.py`` script
is the CI artifact emitter; this test keeps the same claim under
``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from benchmarks.conftest import load_dataset, require_multicore
from repro.aggregates import build_join_tree, covar_batch
from repro.backend import (
    KernelCache,
    ProcessKernelExecutor,
    PythonKernelBackend,
    ShardedBackend,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.backend.plan import build_batch_plan
from repro.bench import emit, emit_header, emit_shard_timings, record_extra_info

WORKER_COUNTS = [2, 4]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.benchmark(group="process-sharded-covar")
def test_process_sharded_covar(benchmark, workers):
    require_multicore(workers)
    ds = load_dataset("retailer", "small")
    batch = covar_batch(ds.features, label=ds.label)
    tree = build_join_tree(ds.db.schema(), ds.query.relations, stats=ds.db.statistics())
    plan = build_batch_plan(ds.db, tree, batch)

    inner = PythonKernelBackend()
    kernel = KernelCache().get_or_compile(inner, plan, LAYOUT_SORTED)
    single = inner.execute(kernel, ds.db)

    pool = ProcessKernelExecutor(workers=workers)
    try:
        backend = ShardedBackend(
            inner=inner, shards=workers, mode="process", executor=pool
        )
        backend.execute(kernel, ds.db)  # warm worker registration
        sharded = benchmark.pedantic(
            lambda: backend.execute(kernel, ds.db),
            rounds=3, iterations=1, warmup_rounds=1,
        )
        assert sharded == single  # bit identity, not approx

        emit_header(f"Process-sharded covar — retailer [small] W={workers}")
        emit_shard_timings(backend.last_shard_seconds)
        emit(f"  {len(batch)} aggregates over "
             f"{ds.db.relation(plan.root.relation).tuple_count()} root rows")
        record_extra_info(
            benchmark,
            workers=workers,
            shard_seconds=backend.last_shard_seconds,
            inner_backend=inner.name,
        )
    finally:
        pool.shutdown()
