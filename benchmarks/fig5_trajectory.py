"""Emit ``BENCH_fig5.json`` — the fig5 tree-fitting perf trajectory.

Fits the paper's depth-4 CART regression tree on the fig5 datasets
once per execution strategy and records wall-clock timings next to the
kernel-cache and column-store hit counters, so speedups from layout
sharing and multi-plan fusion are tracked across commits (CI uploads
the JSON as an artifact).

Strategies, slowest to fastest:

* ``interpreted-engine``    — per-feature group-by batches on the
  interpreted view-tree engine;
* ``interpreted-python``    — the generated-Python group-by kernels;
* ``interpreted-numpy-unfused`` — the numpy backend, one kernel per
  feature per node (the PR 2 execution shape);
* ``interpreted-numpy``     — the numpy backend with the node's F
  feature batches fused into one MultiBatchPlan kernel;
* ``vectorized``            — the fact-aligned VectorizedTreeEngine.

Usage::

    PYTHONPATH=src python benchmarks/fig5_trajectory.py [--out BENCH_fig5.json]

Environment: ``IFAQ_TRAJ_SIZES`` (comma list, default ``small``),
``IFAQ_TRAJ_BACKENDS`` (comma list of strategy names, default all),
``IFAQ_BENCH_SCALE`` (dataset scale multiplier, see conftest).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import load_dataset
from repro import __version__
from repro.backend import KernelCache, column_store_stats, reset_column_store_stats
from repro.ml import IFAQRegressionTree

DEPTH = 4
MAX_THRESHOLDS = 64

STRATEGIES = (
    "interpreted-engine",
    "interpreted-python",
    "interpreted-numpy-unfused",
    "interpreted-numpy",
    "vectorized",
)


def _model(strategy: str, features, label, cache: KernelCache) -> IFAQRegressionTree:
    common = dict(
        max_depth=DEPTH, max_thresholds=MAX_THRESHOLDS, kernel_cache=cache
    )
    if strategy == "vectorized":
        return IFAQRegressionTree(features, label, **common)
    backend = strategy.removeprefix("interpreted-").removesuffix("-unfused")
    return IFAQRegressionTree(
        features,
        label,
        method="interpreted",
        backend=backend,
        fuse_node_batches=not strategy.endswith("-unfused"),
        **common,
    )


def run_case(name: str, size: str, strategies) -> dict:
    ds = load_dataset(name, size)
    features = list(ds.features)
    case = {
        "dataset": name,
        "size": size,
        "features": len(features),
        "root_tuples": ds.db.relation(ds.query.relations[0]).tuple_count(),
        "fits": {},
    }
    for strategy in strategies:
        cache = KernelCache()
        reset_column_store_stats()
        model = _model(strategy, features, ds.label, cache)
        started = time.perf_counter()
        model.fit(ds.db, ds.query)
        seconds = time.perf_counter() - started
        case["fits"][strategy] = {
            "seconds": round(seconds, 6),
            "nodes": model.root_.node_count(),
            "kernel_cache": cache.stats.as_dict(),
            "column_store": column_store_stats().as_dict(),
        }
        print(f"  {strategy:<28s} {seconds:8.3f}s", flush=True)
    fused = case["fits"].get("interpreted-numpy", {}).get("seconds")
    unfused = case["fits"].get("interpreted-numpy-unfused", {}).get("seconds")
    if fused and unfused:
        case["numpy_fusion_speedup"] = round(unfused / fused, 3)
    return case


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fig5.json")
    args = parser.parse_args(argv)

    sizes = [
        s for s in os.environ.get("IFAQ_TRAJ_SIZES", "small").split(",") if s
    ]
    strategies = [
        s for s in os.environ.get("IFAQ_TRAJ_BACKENDS", ",".join(STRATEGIES)).split(",")
        if s
    ]
    report = {
        "benchmark": "fig5-regression-tree",
        "version": __version__,
        "depth": DEPTH,
        "max_thresholds": MAX_THRESHOLDS,
        "scale": float(os.environ.get("IFAQ_BENCH_SCALE", "1.0")),
        "cases": [],
    }
    for name in ("favorita", "retailer"):
        for size in sizes:
            print(f"{name}/{size}:", flush=True)
            report["cases"].append(run_case(name, size, strategies))
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
