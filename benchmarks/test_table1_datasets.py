"""Table 1 — characteristics of the Retailer and Favorita datasets.

Reports tuples/size of the database, tuples/size of the join result,
and the relation/attribute counts, for the synthetic stand-ins at both
benchmark scales.  The timed portion is the join materialization (the
cost every materialize-then-learn competitor pays up front).
"""

import pytest

from benchmarks.conftest import load_dataset
from repro.bench import emit, emit_header
from repro.db.query import materialize_join


@pytest.mark.parametrize("name", ["favorita", "retailer"])
@pytest.mark.benchmark(group="table1-join-materialization")
def test_table1_row(benchmark, name):
    ds = load_dataset(name, "large")
    joined = benchmark(materialize_join, ds.db, ds.query)

    summary = ds.summary()
    emit_header(f"Table 1 — {ds.name}")
    emit(f"  Tuples/Size of Database     {summary['db_tuples']:>10,d}"
         f"  ({summary['db_bytes'] / 1e6:.1f} MB est.)")
    emit(f"  Tuples/Size of Join Result  {summary['join_tuples']:>10,d}"
         f"  ({summary['join_bytes'] / 1e6:.1f} MB est.)")
    emit(f"  Relations / Continuous Attrs {summary['relations']} / {summary['continuous_attrs']}")

    assert joined.tuple_count() == summary["join_tuples"]
    # shape checks against the paper's Table 1
    assert summary["relations"] == 5
    expected_attrs = 6 if name == "favorita" else 35
    assert summary["continuous_attrs"] == expected_attrs
