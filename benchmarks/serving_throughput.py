"""Emit ``BENCH_serving.json`` — async serving throughput with coalescing.

Measures the serving layer's request-batching win: N concurrent
clients repeatedly ask for the *same* group-by plan fingerprint, and
the service answers every wave with a single kernel run instead of N.
Two configurations run over identical request streams:

* ``naive``      — coalescing and fusion disabled: every request pays
  its own kernel execution (the per-request baseline);
* ``coalesced``  — the default service: per-fingerprint coalescing on,
  queued group-bys over the same database/δ fused into one
  MultiBatchPlan.

Three request streams: ``same-fingerprint`` (every client asks for one
hot plan), ``filtered`` (the same, with a δ predicate — masked value
passes are not memoized across runs, so this is the full
per-execution cost the coalescer amortizes), and ``fanout`` (clients
rotate through all features, measuring the fusion path).

The report records throughput (requests/second), the speedup of
coalesced over naive, the full ``stats_dict`` of each service, and a
``bit_identical`` flag checking every response against a sequential
single-shot execution of the same kernel — the acceptance gate is
speedup ≥ 2× at ≥ 8 concurrent clients with identical results.

Usage::

    PYTHONPATH=src python benchmarks/serving_throughput.py [--out BENCH_serving.json]

Environment: ``IFAQ_SERVE_CLIENTS`` (default 16), ``IFAQ_SERVE_ROUNDS``
(default 6), ``IFAQ_SERVE_FACTS`` (default 40000), ``IFAQ_SERVE_BACKEND``
(default numpy).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import KernelCache, __version__
from repro.aggregates import build_join_tree, variance_batch
from repro.aggregates.engine import compute_groupby
from repro.data import star_schema
from repro.ml.regression_tree import Condition
from repro.serving import AggregateService, GroupByRequest

CLIENTS = int(os.environ.get("IFAQ_SERVE_CLIENTS", "16"))
ROUNDS = int(os.environ.get("IFAQ_SERVE_ROUNDS", "6"))
FACTS = int(os.environ.get("IFAQ_SERVE_FACTS", "40000"))
BACKEND = os.environ.get("IFAQ_SERVE_BACKEND", "numpy")


def make_service(coalesce: bool) -> AggregateService:
    return AggregateService(
        backend=BACKEND,
        kernel_cache=KernelCache(),
        coalesce=coalesce,
        fuse=coalesce,
    )


async def run_stream(service: AggregateService, requests_per_round: list) -> dict:
    """Drive ``ROUNDS`` waves of concurrent clients; return timing + results."""
    started = time.perf_counter()
    responses = []
    for wave in requests_per_round:
        responses.extend(await service.submit_many(wave))
    seconds = time.perf_counter() - started
    total = sum(len(w) for w in requests_per_round)
    return {
        "requests": total,
        "seconds": round(seconds, 6),
        "requests_per_second": round(total / seconds, 2) if seconds else None,
        "responses": responses,
    }


async def scenario(name: str, ds, waves_for) -> dict:
    """Run one request stream through the naive and coalesced services."""
    out: dict = {"name": name}
    reference: list | None = None
    for mode, coalesce in (("naive", False), ("coalesced", True)):
        async with make_service(coalesce) as service:
            service.register_database("star", ds.db)
            # Warm plans + kernels + column store once so both modes
            # measure steady-state serving, not first-compile cost.
            await service.submit_many(waves_for()[0])
            service.stats.reset()
            timing = await run_stream(service, waves_for())
            responses = timing.pop("responses")
            timing["stats"] = service.stats_dict()["service"]
            timing["kernel_cache"] = service.stats_dict()["kernel_cache"]
            out[mode] = timing
            if reference is None:
                reference = responses
            else:
                out["modes_agree"] = responses == reference
    out["speedup"] = round(out["naive"]["seconds"] / out["coalesced"]["seconds"], 3)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    # Dimension attributes only (fact_attrs=0): serving-shaped group-bys
    # have low-cardinality keys, so responses are small and the cost is
    # the data scan the coalescer is supposed to amortize.
    ds = star_schema(
        n_facts=FACTS, n_dims=3, dim_size=50, attrs_per_dim=2, fact_attrs=0, seed=7
    )
    batch = variance_batch(ds.label)
    tree = build_join_tree(
        ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics())
    )
    hot_feature = ds.features[0]

    def same_fingerprint_waves():
        return [
            [GroupByRequest("star", batch, hot_feature) for _ in range(CLIENTS)]
            for _ in range(ROUNDS)
        ]

    # One structural δ condition: coalesces by (fingerprint, predicate)
    # identity, but defeats the column store's predicate-free eval memo,
    # so every naive run pays the full masked value pass.
    delta = {"Fact": [Condition(ds.label, ">", 0.0)]}

    def filtered_waves():
        return [
            [
                GroupByRequest("star", batch, hot_feature, predicates=delta)
                for _ in range(CLIENTS)
            ]
            for _ in range(ROUNDS)
        ]

    def fanout_waves():
        return [
            [
                GroupByRequest("star", batch, ds.features[c % len(ds.features)])
                for c in range(CLIENTS)
            ]
            for _ in range(ROUNDS)
        ]

    async def drive():
        report = {
            "benchmark": "serving-throughput",
            "version": __version__,
            "backend": BACKEND,
            "clients": CLIENTS,
            "rounds": ROUNDS,
            "facts": FACTS,
            "features": len(ds.features),
            "scenarios": [],
        }
        hot = await scenario("same-fingerprint", ds, same_fingerprint_waves)
        report["scenarios"].append(hot)
        report["scenarios"].append(await scenario("filtered", ds, filtered_waves))
        report["scenarios"].append(await scenario("fanout", ds, fanout_waves))

        # Bit-identity gate: every coalesced response equals a
        # sequential single-shot execution of the same kernel.
        sequential = compute_groupby(
            ds.db, tree, batch, hot_feature,
            backend=BACKEND, kernel_cache=KernelCache(),
        )
        async with make_service(coalesce=True) as service:
            service.register_database("star", ds.db)
            served = await service.submit_many(
                GroupByRequest("star", batch, hot_feature) for _ in range(CLIENTS)
            )
        # The gate covers every scenario: coalesced must equal naive on
        # all three streams, and the hot fingerprint must equal a
        # sequential single-shot execution.
        report["bit_identical"] = all(r == sequential for r in served) and all(
            s.get("modes_agree", False) for s in report["scenarios"]
        )
        report["coalescing_speedup"] = hot["speedup"]
        return report

    report = asyncio.run(drive())
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for s in report["scenarios"]:
        print(
            f"{s['name']:>18s}: naive {s['naive']['requests_per_second']:>9} req/s, "
            f"coalesced {s['coalesced']['requests_per_second']:>9} req/s "
            f"({s['speedup']}x, modes agree: {s.get('modes_agree')})"
        )
    print(
        f"bit-identical to sequential: {report['bit_identical']}; "
        f"coalescing speedup {report['coalescing_speedup']}x; wrote {args.out}"
    )
    return 0 if report["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
