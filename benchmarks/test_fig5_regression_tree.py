"""Figure 5 (right) — end-to-end regression trees (CART, depth ≤ 4).

Rows per dataset × size:

* ``ifaq_tree`` — factorized CART: per-node group-by aggregate batches
  evaluated directly over the database, δ conditions pushed into scans;
* ``materialize`` — the competitors' shared join-materialization step;
* ``scikit_tree_learn_step`` — exact CART over the materialized matrix.

The IFAQ tree runs on the vectorized factorized engine (the analog of
the paper's generated C++); the baseline is exact CART over the
materialized numpy matrix.
"""

import numpy as np
import pytest

from benchmarks.conftest import load_dataset
from repro.backend import KernelCache
from repro.bench import emit, emit_header, emit_kernel_cache, record_extra_info
from repro.ml import (
    BaselineRegressionTree,
    IFAQRegressionTree,
    materialize_to_matrix,
)

DEPTH = 4  # the paper's setting: depth ≤ 4, max 31 nodes

CASES = [
    (name, size) for name in ("favorita", "retailer") for size in ("small", "large")
]


def _features(ds, name):
    return list(ds.features)  # all continuous attributes, as in the paper


def _group(name, size):
    return f"fig5-regtree-{name}-{size}"


@pytest.mark.parametrize("name,size", CASES)
def test_ifaq_tree_end_to_end(benchmark, name, size):
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    features = _features(ds, name)
    model = IFAQRegressionTree(
        features, ds.label, max_depth=DEPTH, max_thresholds=64
    )
    fitted = benchmark.pedantic(lambda: model.fit(ds.db, ds.query), rounds=1, iterations=1)
    emit_header(f"Figure 5 tree — {ds.name} [{size}]")
    emit(f"  nodes={fitted.root_.node_count()} depth={fitted.root_.depth()}")
    assert fitted.root_.depth() <= DEPTH + 1


@pytest.mark.parametrize("name,size", CASES)
def test_ifaq_tree_groupby_registry(benchmark, name, size):
    """Tree training through the backend registry: every per-node
    group-by batch resolves a cached kernel, so the cache report shows
    one miss per feature and a hit for every further node visit."""
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    features = _features(ds, name)
    cache = KernelCache()
    model = IFAQRegressionTree(
        features,
        ds.label,
        max_depth=DEPTH,
        max_thresholds=64,
        method="interpreted",
        backend="numpy",
        kernel_cache=cache,
    )
    fitted = benchmark.pedantic(lambda: model.fit(ds.db, ds.query), rounds=1, iterations=1)
    emit_header(f"Figure 5 tree via registry — {ds.name} [{size}] (backend=numpy)")
    emit(f"  nodes={fitted.root_.node_count()} depth={fitted.root_.depth()}")
    emit_kernel_cache(cache.stats, label="group-by kernel cache")
    record_extra_info(benchmark, kernel_cache=cache.stats.as_dict())
    # One compile per feature plus the fused node bundle; every later
    # node visit is a single bundle hit (not one hit per feature).
    assert cache.stats.misses == len(features) + 1
    assert cache.stats.hits >= fitted.root_.node_count() - 1


@pytest.mark.parametrize("name,size", CASES)
def test_tree_materialize_step(benchmark, name, size):
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    features = _features(ds, name)
    x, y = benchmark.pedantic(
        lambda: materialize_to_matrix(ds.db, ds.query, features, ds.label),
        rounds=2, iterations=1,
    )
    assert x.shape[1] == len(features)


@pytest.mark.parametrize("name,size", CASES)
def test_scikit_tree_learn_step(benchmark, name, size):
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    features = _features(ds, name)
    x, y = materialize_to_matrix(ds.db, ds.query, features, ds.label)
    model = BaselineRegressionTree(features, ds.label, max_depth=DEPTH)
    fitted = benchmark(lambda: model.learn(x, y))
    assert fitted.root_ is not None
