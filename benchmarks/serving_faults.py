"""Emit ``BENCH_faults.json`` — serving throughput under injected faults.

Measures what the fault-tolerance layer costs and what it buys: the
same request stream is served by a clean service and by services under
deterministic fault injection (:mod:`repro.serving.faults`), and every
successful response is checked **bit-identical** against a sequential
single-shot execution of the same kernel — retried and degraded runs
recompute the same pure fold, so equality is exact, not approximate.

Scenarios:

* ``clean``         — thread-executor baseline, no faults;
* ``worker-kills``  — a real one-worker process pool whose worker is
  killed before every ``KILL_EVERY``-th dispatch; the organic
  ``WorkerError`` is absorbed by retry/backoff against the respawned
  worker;
* ``transient-failures`` — the backend raises ``TransientError`` on a
  seeded Bernoulli schedule (``FAIL_RATE``); retries recover every one;
* ``breaker-degraded``  — every process dispatch fails, the circuit
  breaker trips, and the whole stream is served degraded on threads.

The report records per-scenario throughput, retry/breaker/degradation
counters, and a global ``bit_identical`` flag.  **Exit code 1 on any
bit-identity mismatch** — that is the acceptance gate CI enforces.

Usage::

    PYTHONPATH=src python benchmarks/serving_faults.py [--out BENCH_faults.json]

Environment: ``IFAQ_FAULT_CLIENTS`` (default 8), ``IFAQ_FAULT_ROUNDS``
(default 4), ``IFAQ_FAULT_FACTS`` (default 20000), ``IFAQ_FAULT_RATE``
(default 0.2), ``IFAQ_FAULT_KILL_EVERY`` (default 3).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import KernelCache, __version__
from repro.aggregates import build_join_tree, variance_batch
from repro.aggregates.engine import compute_groupby
from repro.backend import NumpyBackend, ProcessKernelExecutor, WorkerError
from repro.data import star_schema
from repro.serving import (
    AggregateService,
    CircuitBreaker,
    Every,
    Fail,
    FaultSchedule,
    FaultyBackend,
    FaultyExecutor,
    GroupByRequest,
    KillWorker,
    RetryPolicy,
    Sometimes,
    TransientError,
)

CLIENTS = int(os.environ.get("IFAQ_FAULT_CLIENTS", "8"))
ROUNDS = int(os.environ.get("IFAQ_FAULT_ROUNDS", "4"))
FACTS = int(os.environ.get("IFAQ_FAULT_FACTS", "20000"))
FAIL_RATE = float(os.environ.get("IFAQ_FAULT_RATE", "0.2"))
KILL_EVERY = int(os.environ.get("IFAQ_FAULT_KILL_EVERY", "3"))

#: immediate retries — the benchmark measures recovery work, not sleeps
RETRY = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)


async def run_stream(service: AggregateService, waves: list) -> dict:
    started = time.perf_counter()
    responses = []
    for wave in waves:
        responses.extend(await service.submit_many(wave))
    seconds = time.perf_counter() - started
    total = sum(len(w) for w in waves)
    stats = service.stats_dict()["service"]
    return {
        "requests": total,
        "seconds": round(seconds, 6),
        "requests_per_second": round(total / seconds, 2) if seconds else None,
        "retries": stats["retries"],
        "retry_exhausted": stats["retry_exhausted"],
        "degraded_runs": stats["degraded_runs"],
        "errors": stats["errors"],
        "breaker_state": stats["breaker_state"],
        "breaker_transitions": stats["breaker_transitions"],
        "responses": responses,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    ds = star_schema(
        n_facts=FACTS, n_dims=3, dim_size=50, attrs_per_dim=2, fact_attrs=0, seed=11
    )
    batch = variance_batch(ds.label)
    tree = build_join_tree(
        ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics())
    )

    def waves():
        # Rotate features so every wave mixes fingerprints (coalescing
        # cannot hide the injected faults behind one shared run).
        return [
            [
                GroupByRequest("star", batch, ds.features[c % len(ds.features)])
                for c in range(CLIENTS)
            ]
            for _ in range(ROUNDS)
        ]

    # The oracle: sequential single-shot execution per feature.
    oracle = {
        feature: compute_groupby(
            ds.db, tree, batch, feature, backend="numpy", kernel_cache=KernelCache()
        )
        for feature in ds.features
    }

    def expected_stream():
        return [
            oracle[ds.features[c % len(ds.features)]]
            for _ in range(ROUNDS)
            for c in range(CLIENTS)
        ]

    scenarios = []
    mismatches = []

    def check(name: str, timing: dict) -> None:
        responses = timing.pop("responses")
        ok = responses == expected_stream()
        timing["bit_identical"] = ok
        if not ok:
            mismatches.append(name)
        scenarios.append({"name": name, **timing})

    async def clean():
        async with AggregateService(
            backend="numpy", kernel_cache=KernelCache(), retry_policy=RETRY,
            coalesce=False, fuse=False,
        ) as service:
            service.register_database("star", ds.db)
            check("clean", await run_stream(service, waves()))

    async def worker_kills():
        schedule = FaultSchedule().on(
            "run_kernel", KillWorker(0), at=Every(KILL_EVERY, start=1)
        )
        pool = ProcessKernelExecutor(workers=1)
        try:
            async with AggregateService(
                backend="numpy", kernel_cache=KernelCache(), retry_policy=RETRY,
                executor=FaultyExecutor(pool, schedule),
                coalesce=False, fuse=False,
            ) as service:
                service.register_database("star", ds.db)
                timing = await run_stream(service, waves())
                timing["injected_faults"] = len(schedule.log)
                check("worker-kills", timing)
        finally:
            pool.shutdown()

    async def transient_failures():
        schedule = FaultSchedule()
        for op in ("run_groupby", "run_groupby_many"):
            schedule.on(op, Fail(TransientError), at=Sometimes(FAIL_RATE, seed=5))
        async with AggregateService(
            backend=FaultyBackend(NumpyBackend(), schedule),
            kernel_cache=KernelCache(), retry_policy=RETRY,
            executor="thread", coalesce=False, fuse=False,
        ) as service:
            service.register_database("star", ds.db)
            timing = await run_stream(service, waves())
            timing["injected_faults"] = len(schedule.log)
            check("transient-failures", timing)

    async def breaker_degraded():
        schedule = FaultSchedule().on(
            "run_kernel", Fail(WorkerError, "pool down"), at=lambda i: True
        )
        pool = ProcessKernelExecutor(workers=1)
        try:
            async with AggregateService(
                backend="numpy", kernel_cache=KernelCache(), retry_policy=RETRY,
                executor=FaultyExecutor(pool, schedule),
                breaker=CircuitBreaker("process", failure_threshold=2, reset_seconds=600.0),
                coalesce=False, fuse=False,
            ) as service:
                service.register_database("star", ds.db)
                timing = await run_stream(service, waves())
                timing["injected_faults"] = len(schedule.log)
                check("breaker-degraded", timing)
        finally:
            pool.shutdown()

    async def drive():
        await clean()
        await worker_kills()
        await transient_failures()
        await breaker_degraded()

    asyncio.run(drive())

    report = {
        "benchmark": "serving-faults",
        "version": __version__,
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "facts": FACTS,
        "fail_rate": FAIL_RATE,
        "kill_every": KILL_EVERY,
        "scenarios": scenarios,
        "bit_identical": not mismatches,
        "mismatched_scenarios": mismatches,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for s in scenarios:
        print(
            f"{s['name']:>18s}: {s['requests_per_second']:>9} req/s, "
            f"retries {s['retries']}, degraded {s['degraded_runs']}, "
            f"breaker {s['breaker_state']}, bit-identical {s['bit_identical']}"
        )
    print(f"bit-identical overall: {report['bit_identical']}; wrote {args.out}")
    return 0 if report["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
