"""Figure 7b — impact of the low-level (data layout) optimizations.

The paper's ladder for the covar-matrix computation, least → most
optimized:

1. optimized aggregates, compiled (Scala there → generated Python here,
   dictionary layout),
2. + record removal (static records + scalar replacement),
3. compilation to C++ with explicit memory management (~2×),
4. + dictionary to array (~1.4×),
5. dictionary-to-trie with **sorted** tries instead of hash-table
   tries (~5× there).

Python rungs run via generated-and-exec'd kernels; C++ rungs compile
with g++ -O3.  The shape check uses a paper-regime workload (hundreds
of thousands of facts, large join-key domains — hash lookups must miss
cache for layout to matter) and asserts the orderings that are robust
across hardware: each Python rung improves on the previous, C++
dominates Python by orders of magnitude, arrays beat hash-map
relations, and the sorted trie beats flat hash scans.  The paper's
sorted-vs-hash *trie* gap (5×) additionally relies on the real
datasets' clustered key order; with uniformly random synthetic keys the
two trie variants land close together (see EXPERIMENTS.md).
"""

import tempfile
import time
from pathlib import Path

import pytest

from repro.aggregates import build_join_tree, covar_batch
from repro.backend.codegen_cpp import generate_cpp_kernel, write_binary_data
from repro.backend.codegen_python import generate_python_kernel
from repro.backend.compile_cpp import compile_kernel, gxx_available
from repro.backend.layout import (
    LAYOUT_ARRAYS,
    LAYOUT_BASELINE,
    LAYOUT_HASH_TRIE,
    LAYOUT_SCALARIZED,
    LAYOUT_SORTED,
)
from repro.backend.plan import build_batch_plan, prepare_data
from repro.bench import emit, emit_header, format_seconds
from repro.data import star_schema

_CASE = {}


def setup_case(n_facts=400_000, dim_size=60_000):
    """A paper-regime workload: large fact table, large key domains."""
    key = (n_facts, dim_size)
    if key not in _CASE:
        ds = star_schema(
            n_facts=n_facts, n_dims=2, dim_size=dim_size, attrs_per_dim=2,
            fact_attrs=1, seed=3,
        )
        batch = covar_batch(ds.features, label=ds.label)
        tree = build_join_tree(
            ds.db.schema(), ds.query.relations, stats=ds.db.statistics()
        )
        plan = build_batch_plan(ds.db, tree, batch)
        _CASE[key] = (ds, plan)
    return _CASE[key]


PY_RUNGS = (
    ("py compiled (dict layout)", LAYOUT_BASELINE),
    ("py record removal", LAYOUT_SCALARIZED),
)
CPP_RUNGS = (
    ("cpp + memory mgmt (hash)", LAYOUT_SCALARIZED),
    ("cpp dict-to-array", LAYOUT_ARRAYS),
    ("cpp hash trie", LAYOUT_HASH_TRIE),
    ("cpp sorted trie", LAYOUT_SORTED),
)


@pytest.mark.parametrize("label,layout", PY_RUNGS, ids=[r[0] for r in PY_RUNGS])
@pytest.mark.benchmark(group="fig7b-lowlevel")
def test_fig7b_python_rung(benchmark, label, layout):
    ds, plan = setup_case(n_facts=20_000, dim_size=3_000)
    fn = generate_python_kernel(plan, layout).compile()
    data = prepare_data(ds.db, plan, layout)
    values = benchmark.pedantic(fn, args=(data,), rounds=3, iterations=1)
    assert values[0] > 0


@pytest.mark.parametrize("label,layout", CPP_RUNGS, ids=[r[0] for r in CPP_RUNGS])
@pytest.mark.benchmark(group="fig7b-lowlevel")
def test_fig7b_cpp_rung(benchmark, label, layout):
    if not gxx_available():
        pytest.skip("g++ not available")
    ds, plan = setup_case(n_facts=20_000, dim_size=3_000)
    compiled = compile_kernel(generate_cpp_kernel(plan, layout, repetitions=5))
    with tempfile.TemporaryDirectory() as tmp:
        data_path = Path(tmp) / "data.bin"
        write_binary_data(ds.db, plan, data_path, layout)

        def run():
            seconds, values = compiled.run(data_path)
            assert values[0] > 0
            return seconds

        kernel_seconds = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(f"  [{label}] kernel-internal time: {format_seconds(kernel_seconds)}")


@pytest.mark.benchmark(group="fig7b-shape-check")
def test_fig7b_ordering(benchmark):
    if not gxx_available():
        pytest.skip("g++ not available")
    ds, plan = setup_case()

    def run_cpp(case_plan, case_ds, layout):
        compiled = compile_kernel(generate_cpp_kernel(case_plan, layout, repetitions=5))
        with tempfile.TemporaryDirectory() as tmp:
            data_path = Path(tmp) / "data.bin"
            write_binary_data(case_ds.db, case_plan, data_path, layout)
            seconds, _ = compiled.run(data_path)
        return seconds

    def measure():
        timings = {}
        # Rungs 1–3 compare Python vs C++ on one (smaller) workload:
        # the Python kernels are ~100× slower, so the paper's rung-2→3
        # "compile to C++" claim is checked at a size Python can run.
        ds_small, plan_small = setup_case(n_facts=20_000, dim_size=3_000)
        for label, layout in PY_RUNGS:
            fn = generate_python_kernel(plan_small, layout).compile()
            data = prepare_data(ds_small.db, plan_small, layout)
            timings[label] = min(_timed(fn, data) for _ in range(3))
        timings["cpp @ python workload"] = run_cpp(
            plan_small, ds_small, LAYOUT_SCALARIZED
        )
        # Rungs 3–5 compare the C++ layouts at the paper-regime scale.
        for label, layout in CPP_RUNGS:
            timings[label] = run_cpp(plan, ds, layout)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_header("Figure 7b — covar computation (paper-regime star join)")
    emit("  Python rungs: 20k facts / 3k keys;  C++ rungs: 400k facts / 60k keys")
    for label in timings:
        emit(f"  {label:<28s} {format_seconds(timings[label]):>12s}")

    # Robust orderings (see module docstring).
    assert timings["py record removal"] < timings["py compiled (dict layout)"] * 1.05
    assert timings["cpp @ python workload"] < timings["py record removal"]
    assert timings["cpp dict-to-array"] < timings["cpp + memory mgmt (hash)"]
    # The sorted-trie rung is reported but not asserted: its advantage
    # over hash tries depends on key clustering the synthetic data lacks
    # and is noise-sensitive on shared hardware (see EXPERIMENTS.md).


def _timed(fn, data) -> float:
    start = time.perf_counter()
    fn(data)
    return time.perf_counter() - start
