"""Figure 6 — impact of the high-level optimizations (D-IFAQ interpreter).

The paper runs an *interpreter* for D-IFAQ and compares, for BGD linear
regression over a Favorita subset:

* the unoptimized program (materializes the join, re-aggregates every
  iteration),
* the program after high-level optimizations (covar matrix hoisted out
  of the loop),
* the bare join computation (identical for both, shown as its own bar).

Left plot: vary input tuples at 50 iterations.  Right plot: vary
iterations at 10,000 tuples.  The shapes to reproduce: the optimized
series tracks the join series closely, and the iteration count has
negligible impact on the optimized program.
"""

import pytest

from repro.bench import emit, emit_header, format_seconds
from repro.data import favorita
from repro.db.query import join_as_ifaq
from repro.interp import Interpreter
from repro.ir.program import Program
from repro.ml.programs import linear_regression_bgd
from repro.opt import high_level_optimize

#: scaled from the paper's 2k–14k tuples / 10–130 iterations
TUPLE_POINTS = (500, 1500, 3000)
ITER_POINTS = (5, 25, 50)
FIXED_ITERATIONS = 20
FIXED_TUPLES = 1500

_FEATURES = ["onpromotion", "perishable", "cluster", "transactions", "oilprice"]


def subset_db(n_tuples):
    ds = favorita(scale=max(n_tuples / 100_000, 0.004), seed=7)
    fact = ds.db.relation("Sales")
    rows = dict(list(fact.data.items())[:n_tuples])
    from repro.db.relation import Relation

    ds.db.add(Relation(fact.schema, rows))
    return ds


def make_programs(ds, iterations):
    prog = linear_regression_bgd(
        ds.db.schema(), ds.query, _FEATURES, ds.label,
        iterations=iterations, alpha=0.5, materialized_q=True,
    )
    stats = dict(ds.db.statistics())
    stats["Q"] = ds.db.relation("Sales").tuple_count()
    opt = high_level_optimize(prog, stats=stats)
    return prog, opt


def env_with_q(ds):
    from repro.db.query import materialize_join

    env = ds.db.to_env()
    env["Q"] = materialize_join(ds.db, ds.query).to_value()
    return env


def run(program, env) -> None:
    Interpreter(env).run_program(program)


@pytest.mark.parametrize("n_tuples", TUPLE_POINTS)
@pytest.mark.benchmark(group="fig6-left-vary-tuples")
class TestFig6LeftVaryTuples:
    def test_join_only(self, benchmark, n_tuples):
        from repro.db.query import materialize_join

        ds = subset_db(n_tuples)
        benchmark.name = f"join[n={n_tuples}]"
        benchmark(lambda: materialize_join(ds.db, ds.query))

    def test_unoptimized(self, benchmark, n_tuples):
        ds = subset_db(n_tuples)
        prog, _ = make_programs(ds, FIXED_ITERATIONS)
        env = env_with_q(ds)
        benchmark.name = f"unoptimized[n={n_tuples}]"
        benchmark.pedantic(run, args=(prog, env), rounds=1, iterations=1)

    def test_optimized(self, benchmark, n_tuples):
        ds = subset_db(n_tuples)
        _, opt = make_programs(ds, FIXED_ITERATIONS)
        env = env_with_q(ds)
        benchmark.name = f"optimized[n={n_tuples}]"
        benchmark.pedantic(run, args=(opt, env), rounds=1, iterations=1)


@pytest.mark.parametrize("iterations", ITER_POINTS)
@pytest.mark.benchmark(group="fig6-right-vary-iterations")
class TestFig6RightVaryIterations:
    def test_unoptimized(self, benchmark, iterations):
        ds = subset_db(FIXED_TUPLES)
        prog, _ = make_programs(ds, iterations)
        env = env_with_q(ds)
        benchmark.name = f"unoptimized[it={iterations}]"
        benchmark.pedantic(run, args=(prog, env), rounds=1, iterations=1)

    def test_optimized(self, benchmark, iterations):
        ds = subset_db(FIXED_TUPLES)
        _, opt = make_programs(ds, iterations)
        env = env_with_q(ds)
        benchmark.name = f"optimized[it={iterations}]"
        benchmark.pedantic(run, args=(opt, env), rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig6-shape-check")
def test_fig6_shape_claims(benchmark):
    """The two qualitative claims, asserted on interpreter work counts."""

    def measure():
        counts = {}
        for iterations in (5, 50):
            ds = subset_db(800)
            prog, opt = make_programs(ds, iterations)
            env = env_with_q(ds)
            for label, program in (("unopt", prog), ("opt", opt)):
                interp = Interpreter(env)
                interp.run_program(program)
                counts[(label, iterations)] = interp.stats.nodes_evaluated
        return counts

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    unopt_growth = counts[("unopt", 50)] / counts[("unopt", 5)]
    opt_growth = counts[("opt", 50)] / counts[("opt", 5)]

    emit_header("Figure 6 shape check (interpreter operation counts)")
    emit(f"  unoptimized 5→50 iterations: ×{unopt_growth:.2f} work")
    emit(f"  optimized   5→50 iterations: ×{opt_growth:.2f} work")
    # iterations dominate the unoptimized program, barely affect the optimized
    assert unopt_growth > 4.0
    assert opt_growth < 2.0
