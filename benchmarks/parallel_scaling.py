"""Emit ``BENCH_parallel.json`` — process-pool scaling versus threads.

The process pool exists to escape the GIL: Python-level kernel loops
serialize on one core no matter how many threads the sharded backend
spreads them over, while worker processes run them truly in parallel.
This benchmark measures that claim on three Figure-5-shaped workloads:

* ``lr-covar-batch``   — the fig5 linear-regression covar batch as a
  plain sharded run over the generated Python kernel (pure-Python
  block loops: the GIL-bound case processes are for);
* ``tree-groupby-batch`` — the fig5 regression-tree variance batch as
  a sharded group-by on the NumPy backend (vectorized blocks: the
  honest case where threads already overlap in BLAS/ufunc code);
* ``serving``          — the async service answering a fan-out of
  distinct group-by fingerprints with its thread vs process executor
  (``fuse=False`` so every fingerprint pays a real kernel run).

For each worker count the sharded workloads time ``mode="thread"``
against ``mode="process"`` over the *same* compiled kernel, and every
process-mode result is compared ``==`` against the sequential
single-shot result — the bit-identity gate.  Any mismatch makes the
script exit non-zero; speedups are recorded for the multi-core CI
runner (on one core the interesting number is the overhead, not the
speedup).

Usage::

    PYTHONPATH=src python benchmarks/parallel_scaling.py [--out BENCH_parallel.json]

Environment: ``IFAQ_BENCH_FACTS`` (default 30000),
``IFAQ_BENCH_REPEATS`` (default 3), ``IFAQ_BENCH_WORKERS`` (comma list,
default ``1,2,...`` up to the core count capped at 8),
``IFAQ_SERVE_CLIENTS`` (default 12).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import KernelCache, __version__
from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.aggregates.engine import compute_groupby
from repro.backend import (
    NumpyBackend,
    ProcessKernelExecutor,
    PythonKernelBackend,
    ShardedBackend,
    build_batch_plan,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.data import star_schema
from repro.serving import AggregateService, GroupByRequest

FACTS = int(os.environ.get("IFAQ_BENCH_FACTS", "30000"))
REPEATS = int(os.environ.get("IFAQ_BENCH_REPEATS", "3"))
CLIENTS = int(os.environ.get("IFAQ_SERVE_CLIENTS", "12"))
CORES = os.cpu_count() or 1


def worker_counts() -> list[int]:
    raw = os.environ.get("IFAQ_BENCH_WORKERS")
    if raw:
        return [int(tok) for tok in raw.split(",") if tok.strip()]
    counts, w = [], 1
    while w <= min(CORES, 8):
        counts.append(w)
        w *= 2
    return counts


def best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs and the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def sharded_workload(name: str, ds, inner, run_single, run_sharded) -> dict:
    """Time thread vs process sharding for every worker count."""
    seq_seconds, reference = best_of(run_single)
    out = {
        "name": name,
        "inner_backend": inner.name,
        "sequential_seconds": round(seq_seconds, 6),
        "bit_identical": True,
        "worker_counts": [],
    }
    for workers in worker_counts():
        pool = ProcessKernelExecutor(workers=workers)
        try:
            threaded = ShardedBackend(inner=inner, shards=workers, mode="thread")
            processed = ShardedBackend(
                inner=inner, shards=workers, mode="process", executor=pool
            )
            # Warm worker-side registration + kernel bootstrap untimed.
            run_sharded(processed)
            t_thread, r_thread = best_of(lambda: run_sharded(threaded))
            t_proc, r_proc = best_of(lambda: run_sharded(processed))
        finally:
            pool.shutdown()
        identical = r_thread == reference and r_proc == reference
        out["bit_identical"] = out["bit_identical"] and identical
        out["worker_counts"].append(
            {
                "workers": workers,
                "thread_seconds": round(t_thread, 6),
                "process_seconds": round(t_proc, 6),
                "process_vs_thread": round(t_thread / t_proc, 3) if t_proc else None,
                "process_vs_sequential": (
                    round(seq_seconds / t_proc, 3) if t_proc else None
                ),
                "bit_identical": identical,
            }
        )
    out["best_process_vs_thread"] = max(
        w["process_vs_thread"] for w in out["worker_counts"]
    )
    return out


def lr_covar_workload(ds) -> dict:
    """Fig5 LR: the covar batch over a generated pure-Python kernel."""
    batch = covar_batch(ds.features, label=ds.label)
    tree = build_join_tree(
        ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics())
    )
    plan = build_batch_plan(ds.db, tree, batch)
    inner = PythonKernelBackend()
    kernel = KernelCache().get_or_compile(inner, plan, LAYOUT_SORTED)
    return sharded_workload(
        "lr-covar-batch",
        ds,
        inner,
        run_single=lambda: inner.execute(kernel, ds.db),
        run_sharded=lambda backend: backend.execute(kernel, ds.db),
    )


def tree_groupby_workload(ds) -> dict:
    """Fig5 tree: the variance batch grouped by a dimension attribute."""
    batch = variance_batch(ds.label)
    tree = build_join_tree(
        ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics())
    )
    plan = build_batch_plan(ds.db, tree, batch, group_attr=ds.features[0])
    inner = NumpyBackend()
    kernel = KernelCache().get_or_compile(inner, plan, LAYOUT_SORTED)
    return sharded_workload(
        "tree-groupby-batch",
        ds,
        inner,
        run_single=lambda: inner.run_groupby(kernel, ds.db),
        run_sharded=lambda backend: backend.run_groupby(kernel, ds.db),
    )


def serving_workload(ds) -> dict:
    """Thread vs process serving executor over distinct fingerprints.

    ``fuse=False`` keeps every feature's group-by a separate kernel run,
    so the executor — not the coalescer — carries the load.
    """
    batch = variance_batch(ds.label)
    tree = build_join_tree(
        ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics())
    )

    def waves():
        return [
            GroupByRequest("star", batch, ds.features[c % len(ds.features)])
            for c in range(CLIENTS)
        ]

    sequential = {
        feature: compute_groupby(
            ds.db, tree, batch, feature, backend="numpy",
            kernel_cache=KernelCache(),
        )
        for feature in ds.features
    }

    async def drive(executor: str) -> tuple[float, bool]:
        async with AggregateService(
            backend=NumpyBackend(),
            kernel_cache=KernelCache(),
            fuse=False,
            executor=executor,
        ) as service:
            service.register_database("star", ds.db)
            await service.submit_many(waves())  # warm compile + bootstrap
            best = float("inf")
            responses: list = []
            for _ in range(REPEATS):
                started = time.perf_counter()
                responses = await service.submit_many(waves())
                best = min(best, time.perf_counter() - started)
            identical = all(
                response == sequential[ds.features[c % len(ds.features)]]
                for c, response in enumerate(responses)
            )
            return best, identical

    t_thread, ok_thread = asyncio.run(drive("thread"))
    t_proc, ok_proc = asyncio.run(drive("process"))
    return {
        "name": "serving",
        "clients": CLIENTS,
        "fingerprints": len(ds.features),
        "thread_seconds": round(t_thread, 6),
        "process_seconds": round(t_proc, 6),
        "thread_requests_per_second": round(CLIENTS / t_thread, 2),
        "process_requests_per_second": round(CLIENTS / t_proc, 2),
        "process_vs_thread": round(t_thread / t_proc, 3) if t_proc else None,
        "bit_identical": ok_thread and ok_proc,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    ds = star_schema(
        n_facts=FACTS, n_dims=3, dim_size=50, attrs_per_dim=2, fact_attrs=0, seed=7
    )
    report = {
        "benchmark": "parallel-scaling",
        "version": __version__,
        "cores": CORES,
        "facts": FACTS,
        "repeats": REPEATS,
        "worker_counts": worker_counts(),
        "workloads": [
            lr_covar_workload(ds),
            tree_groupby_workload(ds),
            serving_workload(ds),
        ],
    }
    report["bit_identical"] = all(w["bit_identical"] for w in report["workloads"])
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for w in report["workloads"]:
        if "worker_counts" in w:
            line = ", ".join(
                f"{c['workers']}w: {c['process_vs_thread']}x"
                for c in w["worker_counts"]
            )
            print(f"{w['name']:>20s} (proc vs thread): {line}")
        else:
            print(
                f"{w['name']:>20s}: thread {w['thread_requests_per_second']} req/s, "
                f"process {w['process_requests_per_second']} req/s "
                f"({w['process_vs_thread']}x)"
            )
    print(f"bit-identical to sequential: {report['bit_identical']} (cores: {CORES})")
    if not report["bit_identical"]:
        print("FAIL: process-sharded results diverged from sequential", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
