"""Section 5 "Compilation Overhead" — g++ time for generated kernels.

The paper reports 4.3 s / 8.3 s (Retailer LR / trees) and 9.7 s / 2.4 s
(Favorita); the shape to reproduce is simply that compile times sit in
the seconds range and scale with the number of generated aggregate
statements (Retailer's 35-attribute covar kernel is the big one).

The kernel-cache benchmark measures what the registry refactor buys:
recompiling the same program/layout is a cache hit that skips code
generation entirely, so per-iteration or per-refit recompiles cost
microseconds instead of the cold-compile time.
"""

import pytest

from benchmarks.conftest import ifaq_backend, load_dataset
from repro.aggregates import build_join_tree, covar_batch
from repro.backend import KernelCache, get_backend
from repro.backend.codegen_cpp import generate_cpp_kernel
from repro.backend.compile_cpp import compile_kernel, gxx_available
from repro.backend.layout import LAYOUT_SORTED
from repro.backend.plan import build_batch_plan
from repro.bench import emit, emit_header, emit_kernel_cache, record_extra_info


@pytest.mark.parametrize("name", ["favorita", "retailer"])
@pytest.mark.benchmark(group="compilation-overhead")
def test_gcc_compile_time(benchmark, name, tmp_path):
    if not gxx_available():
        pytest.skip("g++ not available")
    ds = load_dataset(name, "small")
    batch = covar_batch(ds.features, label=ds.label)
    tree = build_join_tree(ds.db.schema(), ds.query.relations, stats=ds.db.statistics())
    from repro.backend.plan import build_batch_plan

    plan = build_batch_plan(ds.db, tree, batch)
    kernel = generate_cpp_kernel(plan, LAYOUT_SORTED)

    def compile_fresh():
        # a private work dir defeats the content-hash cache
        import tempfile

        with tempfile.TemporaryDirectory() as work:
            return compile_kernel(kernel, work_dir=work).compile_seconds

    seconds = benchmark.pedantic(compile_fresh, rounds=1, iterations=1)
    emit_header(f"Compilation overhead — {ds.name}")
    emit(f"  {len(batch)} aggregates, g++ -O3: {seconds:.2f} s")
    assert seconds > 0


@pytest.mark.parametrize("name", ["favorita", "retailer"])
@pytest.mark.benchmark(group="kernel-cache")
def test_kernel_cache_hit(benchmark, name):
    """A second compilation of the same plan/layout is a cache hit."""
    import time

    ds = load_dataset(name, "small")
    batch = covar_batch(ds.features, label=ds.label)
    tree = build_join_tree(ds.db.schema(), ds.query.relations, stats=ds.db.statistics())
    plan = build_batch_plan(ds.db, tree, batch)

    cache = KernelCache()
    backend = get_backend(ifaq_backend())

    started = time.perf_counter()
    cold = cache.get_or_compile(backend, plan, LAYOUT_SORTED)
    cold_seconds = time.perf_counter() - started

    warm = benchmark.pedantic(
        lambda: cache.get_or_compile(backend, plan, LAYOUT_SORTED),
        rounds=5, iterations=1,
    )
    assert warm is cold  # the cached kernel, not a regeneration
    assert cache.stats.hits >= 1 and cache.stats.misses == 1

    emit_header(f"Kernel cache — {ds.name} (backend={backend.name})")
    emit(f"  cold compile: {cold_seconds:.4f} s")
    emit_kernel_cache(cache.stats)
    record_extra_info(
        benchmark,
        kernel_cache=cache.stats.as_dict(),
        cold_compile_seconds=cold_seconds,
    )
