"""Figure 7a — impact of aggregation optimizations on the covar batch.

The paper computes the covar matrix for 1M Favorita tuples (scaled
here) under three progressively optimized strategies:

* pushed-down aggregates (one view tree per aggregate),
* merged views + multi-aggregate iteration (~19× there),
* dictionary-to-trie on top (~2× more).

The ordering — pushdown slowest, trie fastest — is the shape to check;
it is asserted at the end using the timing of a shared measurement.
"""

import time

import pytest

from benchmarks.conftest import load_dataset
from repro.aggregates import (
    build_join_tree,
    compute_batch_merged,
    compute_batch_pushdown,
    compute_batch_trie,
    covar_batch,
)
from repro.aggregates.engine import build_root_trie
from repro.bench import emit, emit_header, format_seconds

_TRIE_CACHE: dict = {}


def setup_case():
    ds = load_dataset("favorita", "large")
    batch = covar_batch(ds.features, label=ds.label)
    tree = build_join_tree(
        ds.db.schema(), ds.query.relations, stats=ds.db.statistics()
    )
    return ds, batch, tree


def _trie_engine(db, tree, batch):
    # The trie index is built once, untimed — the paper assumes all
    # relations are pre-indexed by their join attributes.
    key = id(db)
    if key not in _TRIE_CACHE:
        _TRIE_CACHE[key] = build_root_trie(db, tree)
    return compute_batch_trie(db, tree, batch, root_trie=_TRIE_CACHE[key])


ENGINES = (
    ("pushed-down aggregates", compute_batch_pushdown),
    ("merged views + multi-aggregate", compute_batch_merged),
    ("dictionary to trie", _trie_engine),
)


@pytest.mark.parametrize("label,engine", ENGINES, ids=[e[0] for e in ENGINES])
@pytest.mark.benchmark(group="fig7a-aggregate-optimizations")
def test_fig7a_stage(benchmark, label, engine):
    ds, batch, tree = setup_case()
    result = benchmark(engine, ds.db, tree, batch)
    assert result["agg_count"] > 0


@pytest.mark.benchmark(group="fig7a-shape-check")
def test_fig7a_ordering(benchmark):
    ds, batch, tree = setup_case()

    def measure():
        timings = {}
        for label, engine in ENGINES:
            start = time.perf_counter()
            engine(ds.db, tree, batch)
            timings[label] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_header(f"Figure 7a — covar batch over {ds.name} ({len(batch)} aggregates)")
    base = timings["pushed-down aggregates"]
    for label, _ in ENGINES:
        speedup = base / timings[label]
        emit(f"  {label:<34s} {format_seconds(timings[label]):>12s}   ×{speedup:.1f}")

    assert timings["merged views + multi-aggregate"] < timings["pushed-down aggregates"]
    assert timings["dictionary to trie"] <= timings["merged views + multi-aggregate"] * 1.2
