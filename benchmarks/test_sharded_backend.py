"""Sharded parallel evaluation of the covar batch.

Measures the K-way :class:`ShardedBackend` against the single-shot
backend on the Figure-5 covar workload and records per-shard wall-clock
timings plus kernel-cache counters in the benchmark JSON
(``--benchmark-json=BENCH_<name>.json``).  With the C++ inner backend
the shards run in parallel subprocesses; with the Python inner the
block partials are merged in canonical order, so the sharded result is
bit-identical to single-shot.
"""

import pytest

from benchmarks.conftest import ifaq_backend, load_dataset
from repro.aggregates import build_join_tree, covar_batch
from repro.backend import KernelCache, ShardedBackend, get_backend
from repro.backend.layout import LAYOUT_SORTED
from repro.backend.plan import build_batch_plan
from repro.bench import (
    emit,
    emit_header,
    emit_kernel_cache,
    emit_shard_timings,
    record_extra_info,
)

SHARD_COUNTS = [1, 2, 4]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.benchmark(group="sharded-covar")
def test_sharded_covar(benchmark, shards):
    ds = load_dataset("retailer", "small")
    batch = covar_batch(ds.features, label=ds.label)
    tree = build_join_tree(ds.db.schema(), ds.query.relations, stats=ds.db.statistics())
    plan = build_batch_plan(ds.db, tree, batch)

    cache = KernelCache()
    inner = get_backend(ifaq_backend())
    backend = ShardedBackend(inner=inner, shards=shards)
    kernel = cache.get_or_compile(backend, plan, LAYOUT_SORTED)

    single = inner.execute(kernel, ds.db)
    sharded = benchmark.pedantic(
        lambda: backend.execute(kernel, ds.db), rounds=3, iterations=1, warmup_rounds=1
    )
    for name, value in single.items():
        assert abs(sharded[name] - value) <= 1e-9 * max(1.0, abs(value))

    emit_header(f"Sharded covar — retailer [small] K={shards} (inner={inner.name})")
    emit_shard_timings(backend.last_shard_seconds)
    emit_kernel_cache(cache.stats)
    emit(f"  {len(batch)} aggregates over {ds.db.relation(plan.root.relation).tuple_count()} root rows")
    record_extra_info(
        benchmark,
        shards=shards,
        shard_seconds=backend.last_shard_seconds,
        kernel_cache=cache.stats.as_dict(),
        inner_backend=inner.name,
    )
