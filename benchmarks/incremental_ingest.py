"""Emit ``BENCH_incremental.json`` — delta ingestion vs full recompute.

Measures the incremental-maintenance win: a service holds warmed
materialized views (one plain covariance batch, one group-by rooted at
the fact relation), then fact rows arrive in append batches of 0.1%,
1% and 10% of the training data.  Each batch is applied twice:

* ``delta``  — ``AggregateService.ingest``: the column store extends
  its arrays in place and every registered view folds only the
  appended block range into its maintained state (the ring monoid
  makes partials mergeable, so the tail fold reproduces the canonical
  left-to-right block association bit for bit);
* ``full``   — the pre-ingest baseline: the same kernels executed on a
  fresh deep copy of the mutated database, which rebuilds the column
  store from scratch and rescans every row (what eviction + recompute
  would cost).

Append rows come from each bundle's held-out test split — the test
fact rows use disjoint dates, so every batch is a *pure append* and
the delta path stays eligible.

The report records per-fraction wall times, the delta speedup, the
service's ``stats_dict``, and a ``bit_identical`` flag comparing every
served post-ingest result against the from-scratch recompute with
``==`` — the acceptance gate is bit identity (exit 1 on any mismatch);
the 1%-append speedup target (≥ 5×) is recorded as ``meets_target``.

Usage::

    PYTHONPATH=src python benchmarks/incremental_ingest.py [--out BENCH_incremental.json]

Environment: ``IFAQ_INGEST_SCALE`` (dataset scale, default 0.2 — the
fig5 "large" size; below ~0.1 fixed per-ingest overhead dominates and
the speedup target loses meaning), ``IFAQ_INGEST_BLOCK`` (backend
block size, default 512).
"""

from __future__ import annotations

import argparse
import asyncio
import copy
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import KernelCache, __version__
from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.backend import NumpyBackend, build_batch_plan
from repro.backend.layout import LAYOUT_SORTED
from repro.data import favorita, retailer
from repro.serving import AggregateRequest, AggregateService, GroupByRequest

SCALE = float(os.environ.get("IFAQ_INGEST_SCALE", "0.2"))
BLOCK = int(os.environ.get("IFAQ_INGEST_BLOCK", "512"))
FRACTIONS = (0.001, 0.01, 0.10)

# Group-by attributes owned by each fact relation: group-by plans
# reroot at the grouping attribute's owner, so a fact-owned attribute
# keeps the plan rooted at the relation the appends land in — the
# delta-eligible case the benchmark is about.
DATASETS = (
    ("favorita", favorita, "onpromotion"),
    ("retailer", retailer, "inventoryunits"),
)


async def run_dataset(name: str, maker, group_attr: str) -> dict:
    ds = maker(scale=SCALE, seed=42)
    fact = ds.query.relations[0]
    db = ds.db
    n_train = len(db.relation(fact).data)
    pool = [tuple(rec.values()) for rec in ds.test_db.relation(fact).data]

    plain_batch = covar_batch(ds.features, label=ds.label)
    group_batch = variance_batch(ds.label)

    # From-scratch oracle: plans built from the *pre-ingest* statistics,
    # exactly as the service memoizes them, so the float association of
    # both sides matches and ``==`` is a fair bit-identity check.
    tree = build_join_tree(db.schema(), ds.query.relations, stats=dict(db.statistics()))
    backend = NumpyBackend(block_size=BLOCK)
    plain_kernel = backend.compile_plan(
        build_batch_plan(db, tree, plain_batch), LAYOUT_SORTED
    )
    group_kernel = backend.compile_plan(
        build_batch_plan(db, tree, group_batch, group_attr=group_attr), LAYOUT_SORTED
    )

    plain_req = AggregateRequest(name, plain_batch)
    group_req = GroupByRequest(name, group_batch, group_attr)

    out: dict = {"dataset": name, "fact": fact, "train_records": n_train}
    steps: list[dict] = []
    used = 0
    async with AggregateService(
        backend=NumpyBackend(block_size=BLOCK), kernel_cache=KernelCache()
    ) as service:
        service.register_database(name, db)
        base_plain = await service.submit(plain_req)
        base_group = await service.submit(group_req)
        out["baseline_identical"] = base_plain == backend.execute(
            plain_kernel, copy.deepcopy(db)
        ) and base_group == backend.run_groupby(group_kernel, copy.deepcopy(db))

        for fraction in FRACTIONS:
            count = max(1, int(n_train * fraction))
            rows = pool[used : used + count]
            used += count
            if len(rows) < count:
                steps.append({"fraction": fraction, "skipped": "test pool exhausted"})
                continue

            started = time.perf_counter()
            report = await service.ingest(name, fact, rows)
            delta_seconds = time.perf_counter() - started
            served_plain = await service.submit(plain_req)
            served_group = await service.submit(group_req)

            clean = copy.deepcopy(db)  # fresh store: full recompute rebuilds it
            started = time.perf_counter()
            full_plain = backend.execute(plain_kernel, clean)
            full_group = backend.run_groupby(group_kernel, clean)
            full_seconds = time.perf_counter() - started

            steps.append(
                {
                    "fraction": fraction,
                    "rows": len(rows),
                    "pure_append": report["pure_append"],
                    "delta_runs": report["delta_runs"],
                    "full_recomputes": report["full_recomputes"],
                    "delta_seconds": round(delta_seconds, 6),
                    "full_seconds": round(full_seconds, 6),
                    "speedup": round(full_seconds / delta_seconds, 2)
                    if delta_seconds
                    else None,
                    "bit_identical": served_plain == full_plain
                    and served_group == full_group,
                }
            )

        out["steps"] = steps
        out["stats"] = service.stats_dict()["service"]
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_incremental.json")
    args = parser.parse_args(argv)

    datasets = [
        asyncio.run(run_dataset(name, maker, group_attr))
        for name, maker, group_attr in DATASETS
    ]

    def one_pct(ds: dict) -> dict | None:
        for step in ds["steps"]:
            if step.get("fraction") == 0.01 and "speedup" in step:
                return step
        return None

    one_pct_steps = [s for s in (one_pct(ds) for ds in datasets) if s]
    report = {
        "benchmark": "incremental-ingest",
        "version": __version__,
        "scale": SCALE,
        "block_size": BLOCK,
        "fractions": list(FRACTIONS),
        "datasets": datasets,
        "bit_identical": all(
            ds["baseline_identical"]
            and all(s.get("bit_identical", True) for s in ds["steps"])
            for ds in datasets
        ),
        "speedup_1pct": min((s["speedup"] for s in one_pct_steps), default=None),
        "meets_target": bool(one_pct_steps)
        and all(s["speedup"] >= 5.0 for s in one_pct_steps),
    }

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for ds in datasets:
        for step in ds["steps"]:
            if "skipped" in step:
                print(f"[{ds['dataset']}] {step['fraction']:.1%}: {step['skipped']}")
                continue
            mark = "ok" if step["bit_identical"] else "MISMATCH"
            print(
                f"[{ds['dataset']}] +{step['fraction']:.1%} ({step['rows']} rows): "
                f"delta {step['delta_seconds'] * 1e3:.1f}ms vs "
                f"full {step['full_seconds'] * 1e3:.1f}ms -> "
                f"{step['speedup']}x  [{mark}]"
            )
    print(
        f"bit_identical={report['bit_identical']} "
        f"speedup_1pct={report['speedup_1pct']} meets_target={report['meets_target']}"
    )
    return 0 if report["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
