"""Shared benchmark fixtures and scale configuration.

Scales are laptop/CI-sized by default; set ``IFAQ_BENCH_SCALE`` (a float
multiplier) to grow every workload, e.g. ``IFAQ_BENCH_SCALE=4 pytest
benchmarks/ --benchmark-only`` for a longer, higher-fidelity run.
"""

from __future__ import annotations

import os

import pytest

from repro.data import favorita, retailer

SCALE = float(os.environ.get("IFAQ_BENCH_SCALE", "1.0"))

#: dataset → (small, large) scale factors; the paper's small variant is
#: 25% of the large one.
DATASET_SCALES = {
    "favorita": (0.05 * SCALE, 0.2 * SCALE),
    "retailer": (0.05 * SCALE, 0.2 * SCALE),
}

_MAKERS = {"favorita": favorita, "retailer": retailer}
_CACHE: dict = {}


def load_dataset(name: str, size: str):
    """Memoized dataset construction (generation is untimed)."""
    key = (name, size)
    if key not in _CACHE:
        small, large = DATASET_SCALES[name]
        scale = small if size == "small" else large
        _CACHE[key] = _MAKERS[name](scale=scale, seed=42)
    return _CACHE[key]


@pytest.fixture(params=["favorita", "retailer"])
def dataset_name(request):
    return request.param


@pytest.fixture(params=["small", "large"])
def dataset_size(request):
    return request.param


@pytest.fixture
def bundle(dataset_name, dataset_size):
    return load_dataset(dataset_name, dataset_size)


def require_multicore(minimum: int = 2) -> None:
    """Skip the calling test when the host cannot parallelize.

    Process-pool benchmarks measure GIL escape; on a single core the
    pool only adds pickling overhead and the speedup claim is
    unfalsifiable, so the bench is noise rather than signal.
    """
    cores = os.cpu_count() or 1
    if cores < minimum:
        pytest.skip(f"needs >= {minimum} cores, host has {cores}")


def ifaq_backend() -> str:
    """The benchmark backend: ``REPRO_BACKEND`` if set (CI runs a
    ``numpy`` leg), else C++ when a toolchain exists (the paper's
    backend), else Python."""
    override = os.environ.get("REPRO_BACKEND")
    if override:
        return override
    from repro.backend.compile_cpp import gxx_available

    return "cpp" if gxx_available() else "python"
