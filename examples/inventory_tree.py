"""Inventory-demand regression tree on the synthetic Retailer dataset.

Learns a CART regression tree (depth ≤ 4, the paper's setting) with the
factorized IFAQ learner — every node's split search runs group-by
aggregate batches directly over the 5-relation snowflake join, with the
node's path conditions pushed into the relation scans — and compares
against exact CART over the materialized join.

Run:  python examples/inventory_tree.py [scale]
"""

import sys
import time

from repro.data import retailer
from repro.ml import (
    BaselineRegressionTree,
    IFAQRegressionTree,
    materialize_to_matrix,
    rmse,
)


def main(scale: float = 0.03) -> None:
    print(f"generating synthetic Retailer (scale={scale}) ...")
    ds = retailer(scale=scale, seed=7)
    features = ds.features[:8]  # a spread across Location/Census/Item/Weather
    print(f"  {ds.db.relation('Inventory').tuple_count():,} inventory facts")
    print(f"  features: {features}")

    started = time.perf_counter()
    ifaq = IFAQRegressionTree(
        features, ds.label, max_depth=4, max_thresholds=32
    ).fit(ds.db, ds.query)
    ifaq_seconds = time.perf_counter() - started
    print(f"\nIFAQ factorized CART: {ifaq_seconds:.2f} s")
    print(f"  tree: {ifaq.root_.node_count()} nodes, depth {ifaq.root_.depth()}")

    started = time.perf_counter()
    x, y = materialize_to_matrix(ds.db, ds.query, features, ds.label)
    materialize_seconds = time.perf_counter() - started
    started = time.perf_counter()
    base = BaselineRegressionTree(features, ds.label, max_depth=4).learn(x, y)
    learn_seconds = time.perf_counter() - started
    print(
        f"materialized CART: {materialize_seconds:.2f} s materialize"
        f" + {learn_seconds:.2f} s learn"
    )

    xt, yt = ds.test_matrix()
    cols = [ds.features.index(f) for f in features]
    preds = [ifaq.predict(dict(zip(features, row))) for row in xt[:, cols]]
    print(f"\nIFAQ test RMSE: {rmse(preds, yt):.4f}")
    print(f"baseline test RMSE: {rmse(base.predict_many(xt[:, cols]), yt):.4f}")

    print("\nlearned tree (top levels):")
    print(ifaq.root_.pretty()[:800])


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.03)
