"""Tour of streaming ingest: maintained materialized views.

Walks the incremental-maintenance path (see docs/SERVING.md):

1. register a database and warm two views (a plain covar batch and a
   group-by rooted at the fact relation),
2. ingest a batch of new fact rows — the column store extends its
   arrays in place and each view folds only the appended tail into its
   maintained state (a delta run, not a recompute),
3. re-serve both views instantly from the refreshed cache and check
   the answers are *bit-identical* to a from-scratch recompute,
4. ingest a duplicate row — a multiplicity bump is not a pure append,
   so the views fall back to a full recompute and still serve
   correctly,
5. read the ingest/delta stats report.

Run:  PYTHONPATH=src python examples/streaming_ingest.py
"""

import asyncio
import copy

from repro import AggregateRequest, AggregateService, GroupByRequest, KernelCache
from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.backend import NumpyBackend, build_batch_plan
from repro.backend.layout import LAYOUT_SORTED
from repro.data import star_schema

ds = star_schema(
    n_facts=20_000, n_dims=3, dim_size=40, attrs_per_dim=2, fact_attrs=1, seed=23
)
covar = covar_batch(ds.features[:3], label=ds.label)
variance = variance_batch(ds.label)


# The oracle plans are built from the *pre-ingest* statistics, exactly
# as the service memoizes them at first submit, so both sides share one
# float association and ``==`` below is a bit-identity check.
_backend = NumpyBackend()
_tree = build_join_tree(
    ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics())
)
_kernels = {
    group_attr: _backend.compile_plan(
        build_batch_plan(ds.db, _tree, batch, group_attr=group_attr), LAYOUT_SORTED
    )
    for batch, group_attr in ((covar, None), (variance, "f0"))
}


def recompute_from_scratch(group_attr=None):
    """Run the oracle plan on a fresh deep copy (own column store) —
    exactly what an eviction + full recompute would produce."""
    clean = copy.deepcopy(ds.db)
    if group_attr is None:
        return _backend.execute(_kernels[None], clean)
    return _backend.run_groupby(_kernels[group_attr], clean)


async def main() -> None:
    async with AggregateService(backend="numpy", kernel_cache=KernelCache()) as service:
        # -- 1. register + warm two views -----------------------------------
        service.register_database("star", ds.db)
        covar_req = AggregateRequest("star", covar)
        # "f0" lives on Fact, so the group-by plan stays rooted at the
        # relation the appends land in — the delta-eligible case.
        group_req = GroupByRequest("star", variance, "f0")
        await service.submit(covar_req)
        await service.submit(group_req)
        print(f"warmed {service.stats_dict()['databases']['star']['views']} views")

        # -- 2. ingest new fact rows ----------------------------------------
        fresh = [tuple(rec.values()) for rec in ds.test_db.relation("Fact").data]
        report = await service.ingest("star", "Fact", fresh[:500])
        print(f"ingested {report['rows']} rows: pure_append={report['pure_append']}, "
              f"{report['delta_runs']} delta run(s) in {report['delta_seconds']:.4f}s")
        assert report["pure_append"] and report["delta_runs"] == 2

        # -- 3. served results are bit-identical to a full recompute --------
        served_covar = await service.submit(covar_req)
        served_groups = await service.submit(group_req)
        assert served_covar == recompute_from_scratch()
        assert served_groups == recompute_from_scratch("f0")
        print(f"post-ingest serves bit-identical "
              f"({service.stats.view_hits} view hits, no kernel re-run)")

        # -- 4. a duplicate row falls back to a full recompute --------------
        dup = next(iter(ds.db.relation("Fact").data))
        report = await service.ingest("star", "Fact", [tuple(dup.values())])
        assert not report["pure_append"] and report["full_recomputes"] == 2
        print("duplicate row -> multiplicity bump -> full recompute fallback")

        # -- 5. the ingest stats report -------------------------------------
        svc = service.stats_dict()["service"]
        print(f"ingests={svc['ingests']} rows={svc['ingest_rows']} "
              f"delta_runs={svc['delta_runs']} full={svc['full_recomputes']} "
              f"delta_speedup={svc['delta_speedup']}x")


if __name__ == "__main__":
    asyncio.run(main())
