"""A tour of the IFAQ compilation pipeline, stage by stage.

Prints the linear-regression program at every layer of Figure 3:

1. the D-IFAQ source (what a data scientist writes),
2. after high-level optimizations (covar matrix memoized + hoisted),
3. after schema specialization (S-IFAQ: records, static accesses),
4. the residual program after aggregate extraction (no Q anywhere),
5. the extracted aggregate batch and its join tree,
6. the generated kernel source (Python here; C++ with backend="cpp").

Run:  python examples/compiler_tour.py
"""

from repro.compiler import IFAQCompiler
from repro.data import star_schema
from repro.ir.pretty import pretty_program
from repro.ml.programs import linear_regression_bgd


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    ds = star_schema(n_facts=500, n_dims=2, dim_size=12, attrs_per_dim=1, seed=1)
    program = linear_regression_bgd(
        ds.db.schema(), ds.query, ds.features, ds.label, iterations=10, alpha=0.05
    )

    banner("1. D-IFAQ source program (dynamically typed)")
    print(pretty_program(program))

    compiler = IFAQCompiler(db=ds.db, query=ds.query, backend="python")
    artifacts = compiler.compile(program)

    banner("2. After high-level optimizations (Section 4.1)")
    print(pretty_program(artifacts.optimized))

    banner("3. After schema specialization → S-IFAQ (Section 4.2)")
    print(pretty_program(artifacts.specialized)[:2500])
    print(f"\n  static state type: {artifacts.state_type!r}")

    banner("4. Residual program after aggregate extraction (Section 4.3)")
    print(pretty_program(artifacts.residual))

    banner("5. Extracted aggregate batch + join tree")
    for spec in artifacts.batch:
        print(f"  {spec.name:<24s} {spec!r}")
    print("\njoin tree:")
    print(artifacts.join_tree.pretty())

    banner("6. Generated kernel (Section 4.4 data layouts)")
    print(artifacts.kernel_source[:2200])

    banner("Result")
    state = compiler.run_artifacts(artifacts)
    theta = state["theta"]
    print("θ =", {k: round(theta[k], 4) for k in theta.field_names()})


if __name__ == "__main__":
    main()
