"""Tour of the pluggable execution layer: registry, cache, shards.

Shows how the four layers added on top of the paper's pipeline fit
together:

1. resolve backends by name through the registry (including the
   cpp → python toolchain fallback, decided exactly once),
2. compile a plan into a cached kernel and watch hit/miss counters,
3. execute the same kernel single-shot and sharded, and verify the
   sharded result is bit-identical for the Python backend,
4. run the full compiler with a sharded backend instance.

Run:  PYTHONPATH=src python examples/backends_tour.py
"""

import time

from repro import (
    IFAQCompiler,
    KernelCache,
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.aggregates import build_join_tree, covar_batch
from repro.backend import build_batch_plan
from repro.backend.layout import LAYOUT_SORTED
from repro.data import star_schema
from repro.ml.programs import linear_regression_bgd

ds = star_schema(n_facts=20_000, n_dims=3, dim_size=40, attrs_per_dim=2, seed=11)

# -- 1. the registry ------------------------------------------------------
print("registered backends:", ", ".join(available_backends()))
backend = get_backend("cpp")  # resolves to python automatically without g++
print(f'"cpp" resolved to: {backend.name}')

# -- 2. kernel caching ----------------------------------------------------
batch = covar_batch(ds.features, label=ds.label)
tree = build_join_tree(ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics()))
plan = build_batch_plan(ds.db, tree, batch)

cache = KernelCache()
python = get_backend("python")

t0 = time.perf_counter()
kernel = cache.get_or_compile(python, plan, LAYOUT_SORTED)
cold = time.perf_counter() - t0
t0 = time.perf_counter()
assert cache.get_or_compile(python, plan, LAYOUT_SORTED) is kernel
warm = time.perf_counter() - t0
print(f"kernel compile: cold {cold * 1e3:.2f} ms, cached {warm * 1e6:.1f} µs "
      f"({cache.stats.hits} hit / {cache.stats.misses} miss)")

# -- 3. sharded execution, bit-identical merge ----------------------------
single = python.execute(kernel, ds.db)
sharded_backend = ShardedBackend(inner=python, shards=4)
sharded = sharded_backend.execute(kernel, ds.db)
assert sharded == single  # exact equality: canonical block merge order
print(f"sharded K=4 equals single-shot bit-for-bit over {len(batch)} aggregates;")
print("per-shard seconds:", [round(s, 4) for s in sharded_backend.last_shard_seconds])

# -- 4. the full compiler with a backend instance -------------------------
program = linear_regression_bgd(
    ds.db.schema(), ds.query, ds.features, ds.label, iterations=20, alpha=0.5
)
compiler = IFAQCompiler(
    db=ds.db,
    query=ds.query,
    backend=ShardedBackend(inner="python", shards=4),
    kernel_cache=cache,
)
state = compiler.run(program)
theta = state["theta"]
print("θ (first 4 fields):",
      {k: round(theta[k], 4) for k in list(theta.field_names())[:4]})
