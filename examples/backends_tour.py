"""Tour of the pluggable execution layer: registry, cache, shards.

Shows how the layers added on top of the paper's pipeline fit
together:

1. resolve backends by name through the registry (including the
   cpp → python toolchain fallback, decided exactly once),
2. compile a plan into a cached kernel and watch hit/miss counters,
3. execute the same kernel single-shot and sharded, and verify the
   sharded result is bit-identical for the Python backend,
4. run the full compiler with a sharded backend instance,
5. race the vectorized numpy backend against the generated kernel,
6. run a group-by batch through the same plan → kernel → cache path
   (what the regression-tree learner does at every node).

Run:  PYTHONPATH=src python examples/backends_tour.py
"""

import time

from repro import (
    IFAQCompiler,
    KernelCache,
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.aggregates import (
    build_join_tree,
    compute_groupby,
    covar_batch,
    variance_batch,
)
from repro.backend import build_batch_plan
from repro.backend.layout import LAYOUT_SORTED
from repro.data import star_schema
from repro.ml.programs import linear_regression_bgd

ds = star_schema(n_facts=20_000, n_dims=3, dim_size=40, attrs_per_dim=2, seed=11)

# -- 1. the registry ------------------------------------------------------
print("registered backends:", ", ".join(available_backends()))
backend = get_backend("cpp")  # resolves to python automatically without g++
print(f'"cpp" resolved to: {backend.name}')

# -- 2. kernel caching ----------------------------------------------------
batch = covar_batch(ds.features, label=ds.label)
tree = build_join_tree(ds.db.schema(), ds.query.relations, stats=dict(ds.db.statistics()))
plan = build_batch_plan(ds.db, tree, batch)

cache = KernelCache()
python = get_backend("python")

t0 = time.perf_counter()
kernel = cache.get_or_compile(python, plan, LAYOUT_SORTED)
cold = time.perf_counter() - t0
t0 = time.perf_counter()
assert cache.get_or_compile(python, plan, LAYOUT_SORTED) is kernel
warm = time.perf_counter() - t0
print(f"kernel compile: cold {cold * 1e3:.2f} ms, cached {warm * 1e6:.1f} µs "
      f"({cache.stats.hits} hit / {cache.stats.misses} miss)")

# -- 3. sharded execution, bit-identical merge ----------------------------
single = python.execute(kernel, ds.db)
sharded_backend = ShardedBackend(inner=python, shards=4)
sharded = sharded_backend.execute(kernel, ds.db)
assert sharded == single  # exact equality: canonical block merge order
print(f"sharded K=4 equals single-shot bit-for-bit over {len(batch)} aggregates;")
print("per-shard seconds:", [round(s, 4) for s in sharded_backend.last_shard_seconds])

# -- 4. the full compiler with a backend instance -------------------------
program = linear_regression_bgd(
    ds.db.schema(), ds.query, ds.features, ds.label, iterations=20, alpha=0.5
)
compiler = IFAQCompiler(
    db=ds.db,
    query=ds.query,
    backend=ShardedBackend(inner="python", shards=4),
    kernel_cache=cache,
)
state = compiler.run(program)
theta = state["theta"]
print("θ (first 4 fields):",
      {k: round(theta[k], 4) for k in list(theta.field_names())[:4]})

# -- 5. the vectorized numpy backend --------------------------------------
numpy_backend = get_backend("numpy")
np_kernel = cache.get_or_compile(numpy_backend, plan, LAYOUT_SORTED)
numpy_backend.execute(np_kernel, ds.db)  # warm the columnar layout
t0 = time.perf_counter()
np_result = numpy_backend.execute(np_kernel, ds.db)
np_secs = time.perf_counter() - t0
t0 = time.perf_counter()
python.execute(kernel, ds.db)
py_secs = time.perf_counter() - t0
assert all(abs(np_result[k] - single[k]) <= 1e-9 * max(1.0, abs(single[k]))
           for k in single)
print(f"numpy backend {np_secs * 1e3:.1f} ms vs generated Python "
      f"{py_secs * 1e3:.1f} ms ({py_secs / np_secs:.1f}× faster), same results")

# -- 6. group-by batches through the registry -----------------------------
feature = ds.features[0]
for _ in range(3):  # e.g. three tree nodes asking about the same feature
    groups = compute_groupby(
        ds.db, tree, variance_batch(ds.label), feature,
        backend=numpy_backend, kernel_cache=cache,
    )
print(f"group-by on {feature}: {len(groups)} groups; "
      f"cache now {cache.stats.hits} hit / {cache.stats.misses} miss "
      f"(repeat group-bys are hits)")
