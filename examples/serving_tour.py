"""Tour of the async aggregate-serving layer.

Walks the end-to-end serving path (see docs/SERVING.md):

1. register a database with the service (join tree planned once),
2. fire one plain covar-batch request and one group-by request,
3. fire 12 *concurrent identical* group-by requests and watch them
   coalesce into a single kernel run,
4. fire one group-by per feature concurrently and watch the queued
   requests fuse into one MultiBatchPlan execution,
5. read the coalesce/cache/memory stats report,
6. evict the database (dropping its shared column store).

Run:  PYTHONPATH=src python examples/serving_tour.py
"""

import asyncio

from repro import AggregateRequest, AggregateService, GroupByRequest, KernelCache
from repro.aggregates import covar_batch, variance_batch
from repro.data import star_schema

ds = star_schema(
    n_facts=30_000, n_dims=3, dim_size=40, attrs_per_dim=2, fact_attrs=0, seed=23
)


async def main() -> None:
    async with AggregateService(backend="numpy", kernel_cache=KernelCache()) as service:
        # -- 1. registration ------------------------------------------------
        service.add_hooks(
            on_register=lambda name, db: print(f"registered {name!r} "
                                               f"({len(db.relations)} relations)")
        )
        service.register_database("star", ds.db)

        # -- 2. one plain batch + one group-by ------------------------------
        covar = await service.submit(
            AggregateRequest("star", covar_batch(ds.features[:2], label=ds.label))
        )
        print(f"covar batch: {len(covar)} aggregates, "
              f"count = {covar['agg_count']:.0f}")

        vbatch = variance_batch(ds.label)
        groups = await service.submit(GroupByRequest("star", vbatch, ds.features[0]))
        print(f"group-by {ds.features[0]}: {len(groups)} groups")

        # -- 3. concurrent identical requests coalesce ----------------------
        before = service.stats.runs
        results = await service.submit_many(
            GroupByRequest("star", vbatch, ds.features[1]) for _ in range(12)
        )
        assert all(r == results[0] for r in results)  # one fan-out, same answer
        print(f"12 concurrent identical requests -> "
              f"{service.stats.runs - before} kernel run(s), "
              f"{service.stats.coalesced} coalesced so far")

        # -- 4. mixed group-bys fuse into one MultiBatchPlan ----------------
        before = service.stats.runs
        per_feature = await service.submit_many(
            GroupByRequest("star", vbatch, f) for f in ds.features
        )
        print(f"{len(ds.features)} different-feature group-bys -> "
              f"{service.stats.runs - before} fused run(s) "
              f"({service.stats.fused_requests} requests fused)")
        assert len(per_feature) == len(ds.features)

        # -- 5. the stats report --------------------------------------------
        report = service.stats_dict()
        svc, cache = report["service"], report["kernel_cache"]
        store = report["databases"]["star"]["column_store"]
        print(f"coalesce rate {svc['coalesce_rate']:.0%}, "
              f"kernel cache {cache['hits']} hit / {cache['misses']} miss, "
              f"column store ~{store['approx_bytes'] / 1e6:.1f} MB")

        # -- 6. eviction ----------------------------------------------------
        service.evict_database("star")
        print(f"evicted; registered databases: {service.databases() or '(none)'}")


if __name__ == "__main__":
    asyncio.run(main())
