"""Retail forecasting on the synthetic Favorita dataset (paper Section 5).

Trains the sales-forecasting linear regression three ways —

* IFAQ (factorized, in-database),
* a scikit-style closed-form OLS over the materialized join,
* a TensorFlow-style single epoch of minibatch SGD —

and reports the wall-clock split the paper's Figure 5 plots
(materialization vs learning) plus test-set RMSE for each.

Run:  python examples/retail_forecasting.py [scale]
"""

import sys
import time

from repro.backend.compile_cpp import gxx_available
from repro.data import favorita
from repro.ml import (
    IFAQLinearRegression,
    ScikitStyleLinearRegression,
    TensorFlowStyleLinearRegression,
    materialize_to_matrix,
    rmse,
)


def main(scale: float = 0.05) -> None:
    print(f"generating synthetic Favorita (scale={scale}) ...")
    ds = favorita(scale=scale, seed=42)
    fact_count = ds.db.relation("Sales").tuple_count()
    print(f"  {fact_count:,} sales facts, features: {ds.features}")
    xt, yt = ds.test_matrix()

    # -- IFAQ -------------------------------------------------------------
    backend = "cpp" if gxx_available() else "python"
    ifaq = IFAQLinearRegression(
        ds.features, ds.label, iterations=100, alpha=1.0, backend=backend
    )
    if backend == "cpp":
        # One warm-up fit pays the g++ compilation; the paper reports
        # compilation overhead separately from runtime (Section 5).
        compile_started = time.perf_counter()
        ifaq.fit(ds.db, ds.query)
        print(f"\n(one-off g++ compilation: {time.perf_counter() - compile_started:.1f} s,"
              " reported separately as in the paper)")
    started = time.perf_counter()
    ifaq.fit(ds.db, ds.query)
    ifaq_seconds = time.perf_counter() - started
    print(f"\nIFAQ ({backend} backend): {ifaq_seconds:.3f} s end-to-end")
    print(f"  test RMSE: {rmse(ifaq.predict_many(xt), yt):.4f}")

    # -- scikit-style -------------------------------------------------------
    started = time.perf_counter()
    x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
    materialize_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scikit = ScikitStyleLinearRegression(ds.features, ds.label).learn(x, y)
    scikit_seconds = time.perf_counter() - started
    print(
        f"\nscikit-style OLS: {materialize_seconds:.3f} s materialize"
        f" + {scikit_seconds:.3f} s learn"
    )
    print(f"  test RMSE: {rmse(scikit.predict_many(xt), yt):.4f}")

    # -- TensorFlow-style ---------------------------------------------------
    started = time.perf_counter()
    tf = TensorFlowStyleLinearRegression(
        ds.features, ds.label, batch_size=10_000, learning_rate=0.1
    ).learn(x, y)
    tf_seconds = time.perf_counter() - started
    print(
        f"\nTensorFlow-style (1 epoch): {materialize_seconds:.3f} s materialize"
        f" + {tf_seconds:.3f} s learn"
    )
    print(f"  test RMSE: {rmse(tf.predict_many(xt), yt):.4f}")

    faster = (materialize_seconds) / max(ifaq_seconds, 1e-9)
    print(
        f"\nIFAQ end-to-end vs competitors' materialization alone: "
        f"{faster:.1f}× faster"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
