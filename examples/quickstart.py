"""Quickstart: train a linear regression over a multi-relational database
without ever materializing the join.

Builds the paper's running example (Example 3.1) — Sales ⋈ Stores ⋈
Items — and fits a model with the IFAQ pipeline, then checks it against
the materialize-then-learn closed form.

Run:  python examples/quickstart.py
"""

from repro.db import Database, JoinQuery, Relation, RelationSchema
from repro.ir.types import INT, REAL
from repro.ml import IFAQLinearRegression, ScikitStyleLinearRegression, rmse

# -- 1. a small multi-relational database --------------------------------
sales = Relation.from_rows(
    RelationSchema.of("Sales", [("item", INT), ("store", INT), ("units", REAL)]),
    [
        (0, 0, 9.5), (0, 1, 11.0), (1, 0, 4.5), (1, 1, 6.0),
        (2, 0, 14.0), (2, 1, 16.0), (0, 0, 10.5), (1, 1, 5.5),
    ],
)
stores = Relation.from_rows(
    RelationSchema.of("Stores", [("store", INT), ("city_score", REAL)]),
    [(0, 1.0), (1, 2.0)],
)
items = Relation.from_rows(
    RelationSchema.of("Items", [("item", INT), ("price", REAL)]),
    [(0, 10.0), (1, 5.0), (2, 15.0)],
)
db = Database.of(sales, stores, items)
query = JoinQuery(("Sales", "Stores", "Items"))

# -- 2. fit factorized: the covar matrix is computed directly over the
#       base relations via the join tree (no join materialization) ------
model = IFAQLinearRegression(
    features=["city_score", "price"],
    label="units",
    iterations=200,
    alpha=1.0,
    backend="python",      # or "cpp" (g++), or ShardedBackend(inner="python",
                           # shards=4) — see examples/backends_tour.py
    aggregate_mode="trie",  # Section 4.3's most optimized strategy
).fit(db, query)

print("IFAQ coefficients (intercept, city_score, price):")
print(" ", [round(float(t), 4) for t in model.theta_])

# -- 3. compare against materialize-then-learn OLS -----------------------
baseline = ScikitStyleLinearRegression(["city_score", "price"], "units").fit(db, query)
print("closed-form OLS over the materialized join:")
print(" ", [round(float(t), 4) for t in baseline.theta_])

# -- 4. predictions -------------------------------------------------------
example = {"city_score": 1.5, "price": 12.0}
print(f"prediction for {example}: {model.predict(example):.3f}")
